//! Offline vendored mini-serde.
//!
//! The build environment has no network access and no registry cache, so
//! the real `serde` cannot be fetched. This crate provides the small
//! surface the workspace actually uses — `Serialize` / `Deserialize`
//! derive macros plus a self-describing value model — with JSON encoding
//! supplied by the sibling `serde_json` vendored crate.
//!
//! Unlike upstream serde there is no `Serializer`/`Deserializer` trait
//! pair: types convert to and from an owned [`Value`] tree. That is ample
//! for the workspace (knowledge-base snapshots, experiment results) and
//! keeps the vendored code auditable.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree, the meeting point of serialization and
/// encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an `Array` value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error describing an unexpected value shape.
    pub fn unexpected(expected: &str, got: &Value) -> DeError {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        };
        DeError(format!("expected {expected}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialize a named field out of a map value (derive-macro helper).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get_field(name) {
        Some(f) => T::from_value(f),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

/// Deserialize a named field, falling back to `Default` when the field is
/// absent (derive-macro helper for `#[serde(default)]`).
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get_field(name) {
        Some(f) => T::from_value(f),
        None => Ok(T::default()),
    }
}

// ------------------------------------------------------------ primitives --

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    ref other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) => u64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    ref other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            ref other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// Deserializing into `&'static str` leaks the string. Upstream serde
/// permits `&'static str` fields in derives (they only deserialize from
/// `'static` input); here the leak keeps such derives usable for small
/// interned keys without changing consumer types.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::unexpected("single-char string", other)),
        }
    }
}

// ------------------------------------------------------------ containers --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

// Maps serialize as arrays of `[key, value]` pairs so non-string keys
// (e.g. `(u32, u32)`) roundtrip without a key-encoding scheme.
macro_rules! impl_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::unexpected("array", v))?;
                items
                    .iter()
                    .map(|pair| {
                        let kv = pair.as_array().ok_or_else(|| {
                            DeError::unexpected("[key, value] pair", pair)
                        })?;
                        if kv.len() != 2 {
                            return Err(DeError(format!(
                                "map entry has {} elements, expected 2",
                                kv.len()
                            )));
                        }
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    })
                    .collect()
            }
        }
    };
}

impl_map!(HashMap, Eq + Hash);
impl_map!(BTreeMap, Ord);

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::unexpected("array", v))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError(format!(
                        "tuple has {} elements, expected {expect}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
