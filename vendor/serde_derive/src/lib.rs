//! Derive macros for the offline vendored mini-serde.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote` in the
//! offline build environment) and emits `serde::Serialize` /
//! `serde::Deserialize` impls that convert through `serde::Value`.
//!
//! Supported shapes — everything the workspace uses:
//! * structs with named fields (`#[serde(skip)]` and `#[serde(default)]`
//!   honored per field),
//! * tuple structs (1-field newtypes serialize transparently),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   upstream serde's default).
//!
//! Generics are intentionally unsupported; the derive panics with a clear
//! message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Container-level serde attributes (only `from = "Type"` is supported).
#[derive(Debug, Default)]
struct ContainerAttrs {
    from: Option<String>,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (parsed, _container) = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, shape } => gen_struct_serialize(name, shape),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (parsed, container) = parse_input(input);
    let name = match &parsed {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name.clone(),
    };
    // `#[serde(from = "T")]`: deserialize T, then `From::from` it —
    // upstream serde semantics.
    if let Some(from_ty) = &container.from {
        let code = format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
               fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let inner: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
                 ::std::result::Result::Ok(::std::convert::From::from(inner))\n\
               }}\n\
             }}"
        );
        return code.parse().expect("generated from-conversion impl parses");
    }
    let code = match &parsed {
        Input::Struct { name, shape } => gen_struct_deserialize(name, shape),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing --

fn parse_input(input: TokenStream) -> (Input, ContainerAttrs) {
    let mut container = ContainerAttrs::default();
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility, find `struct` / `enum`.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group, noting
                // any container-level serde settings.
                if let Some(TokenTree::Group(g)) = iter.next() {
                    parse_container_attr(&g, &mut container);
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                // `pub` (possibly followed by a `(crate)` group) or other
                // modifiers: ignore.
            }
            Some(_) => {}
            None => panic!("serde derive: no struct/enum found in input"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }
    let input = match iter.next() {
        None => Input::Struct { name, shape: Shape::Unit },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            Input::Struct { name, shape: Shape::Unit }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = split_top_level(g.stream()).len();
            Input::Struct { name, shape: Shape::Tuple(arity) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Input::Struct { name, shape: Shape::Named(parse_named_fields(g.stream())) }
            } else {
                Input::Enum { name, variants: parse_variants(g.stream()) }
            }
        }
        other => panic!("serde derive: unexpected token after type name: {other:?}"),
    };
    (input, container)
}

/// Inspect one outer attribute group for `serde(from = "Type")`.
fn parse_container_attr(g: &proc_macro::Group, container: &mut ContainerAttrs) {
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if !matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "from" => {
            let Some(TokenTree::Literal(lit)) = args.get(2) else {
                panic!("serde derive (vendored): expected `from = \"Type\"`");
            };
            let text = lit.to_string();
            container.from =
                Some(text.trim_matches('"').to_owned());
        }
        Some(TokenTree::Ident(id)) => {
            panic!(
                "serde derive (vendored): unsupported container attribute `{}`",
                id
            )
        }
        _ => {}
    }
}

/// Split a token stream on commas that sit outside any `<...>` nesting.
/// (Delimiter groups are opaque trees already; only angle brackets need
/// explicit depth tracking.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Read leading `#[...]` attributes off a token slice, returning the serde
/// field attributes and the index of the first non-attribute token.
fn take_attrs(tokens: &[TokenTree]) -> (FieldAttrs, usize) {
    let mut attrs = FieldAttrs::default();
    let mut i = 0;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for tt in args.stream() {
                        if let TokenTree::Ident(id) = tt {
                            match id.to_string().as_str() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                other => panic!(
                                    "serde derive (vendored): unsupported attribute `{other}`"
                                ),
                            }
                        }
                    }
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    (attrs, i)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let (attrs, mut i) = take_attrs(&seg);
            // Skip visibility.
            if matches!(&seg[i], TokenTree::Ident(id) if id.to_string() == "pub") {
                i += 1;
                if matches!(&seg.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            let TokenTree::Ident(name) = &seg[i] else {
                panic!("serde derive: expected field name in {seg:?}");
            };
            Field { name: name.to_string(), attrs }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let (_attrs, i) = take_attrs(&seg);
            let TokenTree::Ident(name) = &seg[i] else {
                panic!("serde derive: expected variant name in {seg:?}");
            };
            let shape = match seg.get(i + 1) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                other => panic!("serde derive: unexpected token in variant: {other:?}"),
            };
            Variant { name: name.to_string(), shape }
        })
        .collect()
}

// ------------------------------------------------------------- generation --

fn gen_struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Tuple(n) => {
            let mut s = format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::DeError::unexpected(\"array\", v))?;\n\
                 if items.len() != {n} {{\n\
                   return ::std::result::Result::Err(::serde::DeError(format!(\
                     \"tuple struct {name} has {{}} elements, expected {n}\", items.len())));\n\
                 }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            let _ = write!(
                s,
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            );
            s
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.attrs.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else if f.attrs.default {
                        format!("{0}: ::serde::de_field_or_default(v, \"{0}\")?", f.name)
                    } else {
                        format!("{0}: ::serde::de_field(v, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             let _ = v;\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                let _ = writeln!(
                    arms,
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                );
            }
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_owned()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                let _ = writeln!(
                    arms,
                    "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                     \"{vn}\".to_string(), {payload})]),",
                    binds.join(", ")
                );
            }
            Shape::Named(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pushes: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.attrs.skip)
                    .map(|f| {
                        format!(
                            "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                            f.name
                        )
                    })
                    .collect();
                let _ = writeln!(
                    arms,
                    "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                     \"{vn}\".to_string(), \
                     ::serde::Value::Map(vec![{}]))]),",
                    binds.join(", "),
                    pushes.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             match self {{\n{arms}}}\n\
           }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                let _ = writeln!(
                    unit_arms,
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                );
            }
            Shape::Tuple(1) => {
                let _ = writeln!(
                    data_arms,
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(payload)?)),"
                );
            }
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                let _ = writeln!(
                    data_arms,
                    "\"{vn}\" => {{\n\
                       let items = payload.as_array().ok_or_else(|| \
                         ::serde::DeError::unexpected(\"array\", payload))?;\n\
                       if items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError(format!(\
                           \"variant {name}::{vn} has {{}} elements, expected {n}\", \
                           items.len())));\n\
                       }}\n\
                       ::std::result::Result::Ok({name}::{vn}({}))\n\
                     }}",
                    items.join(", ")
                );
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.attrs.skip {
                            format!("{}: ::std::default::Default::default()", f.name)
                        } else if f.attrs.default {
                            format!(
                                "{0}: ::serde::de_field_or_default(payload, \"{0}\")?",
                                f.name
                            )
                        } else {
                            format!("{0}: ::serde::de_field(payload, \"{0}\")?", f.name)
                        }
                    })
                    .collect();
                let _ = writeln!(
                    data_arms,
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                    inits.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             match v {{\n\
               ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(format!(\
                   \"unknown variant `{{other}}` of {name}\"))),\n\
               }},\n\
               ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                   {data_arms}\
                   other => ::std::result::Result::Err(::serde::DeError(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
               }}\n\
               other => ::std::result::Result::Err(\
                 ::serde::DeError::unexpected(\"enum {name}\", other)),\n\
             }}\n\
           }}\n\
         }}"
    )
}
