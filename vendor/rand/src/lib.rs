//! Offline vendored mini-rand.
//!
//! The build environment cannot fetch the real `rand` crate, so this
//! provides the 0.8-era API surface the workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `seq::SliceRandom::{shuffle, choose}`) on top of a deterministic
//! xoshiro256** generator seeded via SplitMix64. Streams differ from
//! upstream `rand`, but every consumer in the workspace only relies on
//! *reproducibility for a fixed seed*, which holds.

use std::ops::{Range, RangeInclusive};

/// Minimal core generator trait.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256** with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256 { s }
    }
}

/// Uniform sampling from a range type (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

// Lemire-style unbiased-enough bounded sampling; modulo bias is negligible
// for the synthetic workloads here but we reject-sample anyway for ranges
// that are not a power of two.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Types with a uniform range-sampling rule. The blanket [`SampleRange`]
/// impls below are generic over this, which is what lets integer-literal
/// ranges (`0..60`) unify with the surrounding expression's type the way
/// upstream `rand` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                if inclusive {
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    ((lo as i128) + bounded_u64(rng, span + 1) as i128) as $t
                } else {
                    assert!(lo < hi, "gen_range on empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    ((lo as i128) + bounded_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range(lo: f64, hi: f64, inclusive: bool, rng: &mut dyn RngCore) -> f64 {
        if inclusive {
            assert!(lo <= hi, "gen_range on empty range");
        } else {
            assert!(lo < hi, "gen_range on empty range");
        }
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: f32, hi: f32, inclusive: bool, rng: &mut dyn RngCore) -> f32 {
        f64::sample_range(f64::from(lo), f64::from(hi), inclusive, rng) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Uniformly random value of a supported type.
    #[allow(clippy::should_implement_trait)] // mirrors `rand::Rng::gen`
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespace matching `rand::rngs`.
pub mod rngs {
    /// The standard RNG (deterministic xoshiro256** in this vendored build).
    pub type StdRng = super::Xoshiro256;
}

/// Slice sampling/shuffling, matching `rand::seq`.
pub mod seq {
    use super::{bounded_u64, Rng};

    /// Slice extension trait: shuffling and random element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = bounded_u64(rng, self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
